// Fault tolerance: a miniature of the paper's §4.3/Appendix A.4
// experiments. One ToR pair transmits continuously on the parallel network
// while half of the source's egress fibres are cut mid-run and later
// repaired; the per-epoch receive bandwidth shows the outage, the
// detection delay, and the recovery, with the rotating round-robin rule
// keeping scheduling messages flowing over the surviving links.
//
//	go run ./examples/failure
package main

import (
	"fmt"
	"log"

	negotiator "negotiator"
)

func main() {
	spec := negotiator.SmallSpec()
	spec.Topology = negotiator.ParallelNetwork

	const (
		src = 2
		dst = 9
	)
	// Epoch length for this spec (4 predefined slots x 60ns + 30 x 90ns).
	probe, err := spec.Build()
	if err != nil {
		log.Fatal(err)
	}
	epoch := probe.Summary().EpochLen

	// Cut half the source's egress fibres between epochs 40 and 100.
	var links []negotiator.FailedLink
	for p := 0; p < spec.Ports/2; p++ {
		links = append(links, negotiator.FailedLink{ToR: src, Port: p})
	}
	spec.Failures = &negotiator.FailurePlan{
		Links:       links,
		FailAt:      negotiator.Time(40 * epoch),
		RecoverAt:   negotiator.Time(100 * epoch),
		DetectDelay: 3 * epoch,
	}

	// Sample the receiver's bandwidth in 10-epoch buckets.
	buckets := make([]int64, 0, 32)
	bucket := 10 * epoch
	spec.OnDeliver = func(d int, at negotiator.Time, n int64) {
		if d != dst {
			return
		}
		idx := int(int64(at) / int64(bucket))
		for len(buckets) <= idx {
			buckets = append(buckets, 0)
		}
		buckets[idx] += n
	}

	fab, err := spec.Build()
	if err != nil {
		log.Fatal(err)
	}
	fab.SetWorkload(negotiator.SinglePairWorkload(src, dst, 1<<40, 0))
	fab.Run(140 * epoch)

	fmt.Printf("single pair %d->%d, %d of %d egress links down during epochs 40-100\n",
		src, dst, len(links), spec.Ports)
	fmt.Printf("%-14s %-12s\n", "epoch window", "recv Gbps")
	if len(buckets) > 14 {
		buckets = buckets[:14] // drop the partial final bucket
	}
	for i, b := range buckets {
		gbps := float64(b) * 8 / (negotiator.Duration(bucket)).Seconds() / 1e9
		marker := ""
		switch {
		case i == 4:
			marker = "  <- links fail"
		case i == 10:
			marker = "  <- links repaired"
		}
		fmt.Printf("%4d-%-9d %-12.1f%s\n", i*10, (i+1)*10, gbps, marker)
	}
	fmt.Println("\nBandwidth steps down to the surviving links' share during the")
	fmt.Println("outage (lost in-flight bytes are retransmitted after detection)")
	fmt.Println("and returns to the pre-failure level after repair (Figure 10/19).")
}
