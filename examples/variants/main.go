// Design-choice exploration: a miniature of the paper's §3.5 study. The
// paper argues that NegotiaToR's minimalist choices — binary requests, no
// iteration, stateless scheduling — are enough, and that added complexity
// does not buy proportionate performance. This example runs the base
// matching against every variant from Appendix A.2 on the same workload.
//
//	go run ./examples/variants
package main

import (
	"fmt"
	"log"

	negotiator "negotiator"
)

func main() {
	variants := []struct {
		name      string
		scheduler negotiator.Scheduler
		noSpeedup bool
		note      string
	}{
		{"base (2x speedup)", negotiator.Matching, false, "the paper's design"},
		{"iterative-3, no speedup", negotiator.Iterative3, true, "A.2.1: iteration adds 3 epochs/round of delay"},
		{"iterative-5, no speedup", negotiator.Iterative5, true, "A.2.1"},
		{"data-size priority", negotiator.DataSizePriority, false, "A.2.3: goodput-oriented informative requests"},
		{"hol-delay priority", negotiator.HoLDelayPriority, false, "A.2.3: FCT-oriented informative requests"},
		{"stateful", negotiator.Stateful, false, "A.2.4: destination traffic matrices"},
		{"projector-style", negotiator.ProjecToRStyle, false, "A.2.5: per-port requests, delay priority"},
	}

	const load = 0.9
	fmt.Printf("Hadoop workload at %.0f%% load, 16-ToR parallel network:\n\n", load*100)
	fmt.Printf("%-26s %-12s %-12s %-9s\n", "scheduler", "mice 99p", "mice mean", "goodput")
	for _, v := range variants {
		spec := negotiator.SmallSpec()
		spec.Topology = negotiator.ParallelNetwork
		spec.Scheduler = v.scheduler
		if v.noSpeedup {
			spec.LinkRate = negotiator.Gbps(int64(spec.HostRate) / int64(spec.Ports))
		}
		fab, err := spec.Build()
		if err != nil {
			log.Fatal(err)
		}
		fab.SetWorkload(negotiator.PoissonWorkload(spec, negotiator.Hadoop, load, 23))
		fab.Run(3 * negotiator.Millisecond)
		s := fab.Summary()
		fmt.Printf("%-26s %-12v %-12v %-9.3f  %s\n",
			v.name, s.Mice99p, s.MiceMean, s.GoodputNormalized, v.note)
	}

	// The thin-clos-only selective relay variant (A.2.2).
	for _, relay := range []bool{false, true} {
		spec := negotiator.SmallSpec()
		spec.Topology = negotiator.ThinClos
		spec.SelectiveRelay = relay
		fab, err := spec.Build()
		if err != nil {
			log.Fatal(err)
		}
		fab.SetWorkload(negotiator.PoissonWorkload(spec, negotiator.Hadoop, load, 23))
		fab.Run(3 * negotiator.Millisecond)
		s := fab.Summary()
		name := "thin-clos base"
		if relay {
			name = "thin-clos + selective relay"
		}
		fmt.Printf("%-26s %-12v %-12v %-9.3f  %s\n",
			name, s.Mice99p, s.MiceMean, s.GoodputNormalized, "A.2.2")
	}

	fmt.Println("\nExpected shape (§3.5): iteration trades FCT for little or negative")
	fmt.Println("goodput; informative requests, stateful scheduling and relaying move")
	fmt.Println("the needle marginally — the minimalist design is sufficient.")
}
