// Workloads: run NegotiaToR under the paper's three trace-derived
// workloads (§4.1, §4.4) at the same load and compare — the heavier the
// flow-size mix, the more the scheduled phase matters; the lighter the mix,
// the more traffic rides the piggyback path entirely.
//
//	go run ./examples/workloads
package main

import (
	"fmt"
	"log"

	negotiator "negotiator"
)

func main() {
	traces := []negotiator.Trace{negotiator.Hadoop, negotiator.WebSearch, negotiator.Google}

	fmt.Println("trace characteristics:")
	for _, tr := range traces {
		fmt.Printf("  %-10s mean flow %8.0f B\n", tr, tr.MeanFlowBytes())
	}
	fmt.Println()

	const load = 0.75
	fmt.Printf("NegotiaToR, thin-clos, load %.0f%%:\n", load*100)
	fmt.Printf("%-10s %-8s %-12s %-12s %-9s %-9s\n",
		"trace", "flows", "mice 99p", "mice mean", "goodput", "match")
	for _, tr := range traces {
		spec := negotiator.SmallSpec()
		spec.Topology = negotiator.ThinClos
		fab, err := spec.Build()
		if err != nil {
			log.Fatal(err)
		}
		fab.SetWorkload(negotiator.PoissonWorkload(spec, tr, load, 17))
		fab.Run(3 * negotiator.Millisecond)
		s := fab.Summary()
		fmt.Printf("%-10s %-8d %-12v %-12v %-9.3f %-9.3f\n",
			tr, s.Flows, s.Mice99p, s.MiceMean, s.GoodputNormalized, s.MatchRatio)
	}

	fmt.Println("\nThe Google mix (>80% of flows under 1KB) rides the predefined-phase")
	fmt.Println("piggyback path almost entirely; web search (>80% of flows over 10KB)")
	fmt.Println("exercises the scheduled phase and the matching algorithm hardest.")
	fmt.Println("NegotiaToR keeps mice tail FCT in the tens of microseconds on all")
	fmt.Println("three without retuning epoch parameters (paper Figure 13).")
}
