// Incast: reproduce the paper's incast microbenchmark (§4.2, Figure 7a) at
// example scale. A set of ToRs synchronously send one 1 KB flow each to the
// same destination; NegotiaToR's data piggybacking lets every source bypass
// the scheduling delay, so the finish time stays flat as the incast degree
// grows, while the traffic-oblivious baseline pays the relay detour.
//
//	go run ./examples/incast
package main

import (
	"fmt"
	"log"

	negotiator "negotiator"
)

func main() {
	const (
		dst      = 3
		flowSize = 1000 // bytes per sender, as in the paper
	)
	inject := negotiator.Time(10 * negotiator.Microsecond)

	fmt.Println("incast finish time (µs) vs degree:")
	fmt.Printf("%-8s %-14s %-14s %-14s\n", "degree", "negotiator/par", "negotiator/tc", "oblivious")
	for _, degree := range []int{2, 5, 10, 15} {
		var row []float64
		for _, sys := range []struct {
			top negotiator.Topology
			obl bool
		}{
			{negotiator.ParallelNetwork, false},
			{negotiator.ThinClos, false},
			{negotiator.ThinClos, true},
		} {
			spec := negotiator.SmallSpec()
			spec.Topology = sys.top
			spec.Oblivious = sys.obl

			wl, err := negotiator.IncastWorkload(spec, dst, degree, flowSize, inject, 1, 7)
			if err != nil {
				log.Fatal(err)
			}
			fab, err := spec.Build()
			if err != nil {
				log.Fatal(err)
			}
			fab.SetWorkload(wl)
			fab.Run(500 * negotiator.Microsecond)

			ev := fab.Events()[1]
			if ev.Done < ev.Flows {
				log.Fatalf("incast did not finish: %+v", ev)
			}
			row = append(row, ev.FinishTime().Micros())
		}
		fmt.Printf("%-8d %-14.1f %-14.1f %-14.1f\n", degree, row[0], row[1], row[2])
	}
	fmt.Println("\nNegotiaToR's finish time stays flat: the predefined phase serves")
	fmt.Println("every source of one destination in parallel, so incast degree only")
	fmt.Println("matters to the baseline's relay queues.")
}
