// Hadoop load sweep: a miniature of the paper's main result (§4.3,
// Figure 9) — mice-flow tail FCT and goodput across network loads for
// NegotiaToR on both flat topologies versus the traffic-oblivious
// baseline, under the Meta Hadoop workload.
//
//	go run ./examples/hadoop
package main

import (
	"fmt"
	"log"

	negotiator "negotiator"
)

func main() {
	loads := []float64{0.25, 0.5, 0.75, 1.0}
	systems := []struct {
		name string
		top  negotiator.Topology
		obl  bool
	}{
		{"negotiator/parallel", negotiator.ParallelNetwork, false},
		{"negotiator/thin-clos", negotiator.ThinClos, false},
		{"oblivious/thin-clos", negotiator.ThinClos, true},
	}

	for _, sys := range systems {
		fmt.Printf("%s:\n", sys.name)
		fmt.Printf("  %-8s %-16s %-10s\n", "load", "mice 99p FCT", "goodput")
		for _, load := range loads {
			spec := negotiator.SmallSpec()
			spec.Topology = sys.top
			spec.Oblivious = sys.obl

			fab, err := spec.Build()
			if err != nil {
				log.Fatal(err)
			}
			fab.SetWorkload(negotiator.PoissonWorkload(spec, negotiator.Hadoop, load, 11))
			fab.Run(3 * negotiator.Millisecond)

			s := fab.Summary()
			fmt.Printf("  %-8.0f%% %-16v %-10.3f\n", load*100, s.Mice99p, s.GoodputNormalized)
		}
		fmt.Println()
	}
	fmt.Println("Expected shape (paper Figure 9): NegotiaToR's mice FCT stays in the")
	fmt.Println("tens of microseconds at every load, while the baseline's tail grows")
	fmt.Println("with load as relayed elephants block mice at intermediate ToRs; at")
	fmt.Println("heavy load NegotiaToR also delivers more goodput because one-hop")
	fmt.Println("paths don't double the traffic volume.")
}
