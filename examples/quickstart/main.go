// Quickstart: build a small NegotiaToR fabric, run the paper's default
// Hadoop workload at 50% load, and print the headline metrics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	negotiator "negotiator"
)

func main() {
	// SmallSpec is a 16-ToR x 4-port network; DefaultSpec gives the
	// paper's full 128x8 setup.
	spec := negotiator.SmallSpec()
	spec.Topology = negotiator.ParallelNetwork

	fab, err := spec.Build()
	if err != nil {
		log.Fatal(err)
	}

	// Background traffic: Poisson arrivals, flow sizes from the Meta
	// Hadoop trace, network load 50% (paper §4.1).
	fab.SetWorkload(negotiator.PoissonWorkload(spec, negotiator.Hadoop, 0.5, 42))

	// Simulate 2 ms of fabric time.
	fab.Run(2 * negotiator.Millisecond)

	s := fab.Summary()
	fmt.Printf("NegotiaToR on the %v topology (%d ToRs x %d ports)\n",
		spec.Topology, spec.ToRs, spec.Ports)
	fmt.Printf("  epoch length:        %v (predefined + scheduled phase)\n", s.EpochLen)
	fmt.Printf("  flows completed:     %d (%d mice < 10KB)\n", s.Flows, s.MiceFlows)
	fmt.Printf("  mice FCT 99p / mean: %v / %v\n", s.Mice99p, s.MiceMean)
	fmt.Printf("  goodput:             %.1f%% of host bandwidth\n", 100*s.GoodputNormalized)
	fmt.Printf("  match ratio:         %.3f (theory ~0.63-0.68, Appendix A.1)\n", s.MatchRatio)

	// The same spec runs the traffic-oblivious baseline for comparison.
	spec.Oblivious = true
	base, err := spec.Build()
	if err != nil {
		log.Fatal(err)
	}
	base.SetWorkload(negotiator.PoissonWorkload(spec, negotiator.Hadoop, 0.5, 42))
	base.Run(2 * negotiator.Millisecond)
	b := base.Summary()
	fmt.Printf("\ntraffic-oblivious baseline (same load):\n")
	fmt.Printf("  mice FCT 99p / mean: %v / %v\n", b.Mice99p, b.MiceMean)
	fmt.Printf("  goodput:             %.1f%% of host bandwidth\n", 100*b.GoodputNormalized)
}
