package negotiator_test

import (
	"testing"

	negotiator "negotiator"
)

// BenchmarkQuietRounds* measures the cost of simulating one millisecond
// of completely quiet fabric (no workload attached) at the paper's
// 128-ToR scale — the regime a diurnal trough or a mostly-idle overnight
// run spends its wall-clock in. The "skip" sub-benchmark uses the default
// event-skip run loop (one clock jump per call); "tick" forces the
// pre-PR-7 behavior of executing every empty round (~270 epochs or ~16k
// timeslots per simulated ms). BENCH_pr7.json records both alongside the
// PR 6 tree's numbers.
func benchQuietRounds(b *testing.B, plane negotiator.ControlPlaneKind) {
	for _, bc := range []struct {
		name string
		tick bool
	}{{"skip", false}, {"tick", true}} {
		b.Run(bc.name, func(b *testing.B) {
			spec := negotiator.DefaultSpec()
			spec.ControlPlane = plane
			spec.DisableEventSkip = bc.tick
			fab, err := spec.Build()
			if err != nil {
				b.Fatal(err)
			}
			// One warm-up ms retires the nil workload generator.
			fab.Run(negotiator.Millisecond)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Run's horizon is absolute simulated time: each iteration
				// extends it by one quiet millisecond.
				fab.Run(negotiator.Duration(i+2) * negotiator.Millisecond)
			}
		})
	}
}

func BenchmarkQuietRoundsNegotiator(b *testing.B) {
	benchQuietRounds(b, negotiator.NegotiaToRPlane)
}

func BenchmarkQuietRoundsOblivious(b *testing.B) {
	benchQuietRounds(b, negotiator.ObliviousPlane)
}

func BenchmarkQuietRoundsHybrid(b *testing.B) {
	benchQuietRounds(b, negotiator.HybridPlane)
}
